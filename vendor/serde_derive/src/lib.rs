//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Upstream serde_derive depends on syn/quote, which are unavailable in this
//! offline build, so the derive is implemented directly over
//! [`proc_macro::TokenStream`]: a small scanner extracts the item shape
//! (struct fields or enum variants), and the impl is emitted as source text
//! targeting the vendored `serde::{Serialize, Deserialize, Value}` model.
//!
//! Supported shapes — exactly what this workspace derives:
//! named-field structs, tuple structs, unit structs, and enums whose
//! variants are unit, tuple, or struct-like. Generic items and `#[serde]`
//! attributes are not supported and panic at expansion time.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::fmt::Write;

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = gen_serialize(&name, &shape);
    body.parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = gen_deserialize(&name, &shape);
    body.parse().expect("generated Deserialize impl parses")
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(id) if id.to_string() == s)
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skips outer attributes (`#[...]`) starting at `i`, returning the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() && is_punct(&tokens[i], '#') {
        i += 2; // '#' then the bracketed group
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && is_ident(&tokens[i], "pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        i = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        match tokens.get(i) {
            Some(t) if is_ident(t, "struct") || is_ident(t, "enum") => break,
            Some(_) => i += 1,
            None => panic!("serde derive: no struct/enum keyword found"),
        }
    }
    let is_struct = is_ident(&tokens[i], "struct");
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(t) if is_punct(t, '<')) {
        panic!("serde derive (vendored): generic type `{name}` is not supported");
    }
    let shape = if is_struct {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g))
            }
            Some(t) if is_punct(t, ';') => Shape::UnitStruct,
            other => panic!("serde derive: unexpected struct body {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g))
            }
            other => panic!("serde derive: unexpected enum body {other:?}"),
        }
    };
    (name, shape)
}

/// Advances past one type, stopping after the top-level `,` (or at the end).
/// Tracks angle-bracket depth so commas inside `BTreeMap<K, V>` don't split.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < tokens.len() {
        match &tokens[i] {
            t if is_punct(t, '<') => depth += 1,
            t if is_punct(t, '>') => depth -= 1,
            t if is_punct(t, ',') && depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_named_fields(g: &Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name, found {other:?}"),
        };
        i += 1;
        assert!(
            matches!(tokens.get(i), Some(t) if is_punct(t, ':')),
            "serde derive: expected `:` after field `{name}`"
        );
        i = skip_type(&tokens, i + 1);
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(g: &Group) -> usize {
    let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_type(&tokens, i);
        count += 1;
    }
    count
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(vg))
            }
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(vg))
            }
            _ => VariantKind::Unit,
        };
        // Skip anything up to the separating comma (e.g. discriminants).
        while i < tokens.len() && !is_punct(&tokens[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, kind });
    }
    variants
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ "
    );
    match shape {
        Shape::UnitStruct => out.push_str("::serde::Value::Null"),
        Shape::TupleStruct(1) => out.push_str("::serde::Serialize::to_value(&self.0)"),
        Shape::TupleStruct(n) => {
            out.push_str("::serde::Value::Seq(vec![");
            for idx in 0..*n {
                let _ = write!(out, "::serde::Serialize::to_value(&self.{idx}),");
            }
            out.push_str("])");
        }
        Shape::NamedStruct(fields) => {
            out.push_str("::serde::Value::Map(vec![");
            for f in fields {
                let _ = write!(
                    out,
                    "(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f})),"
                );
            }
            out.push_str("])");
        }
        Shape::Enum(variants) => {
            out.push_str("match self { ");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            out,
                            "{name}::{vname} => ::serde::Value::Text(\
                             ::std::string::String::from(\"{vname}\")),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            out,
                            "{name}::{vname}(__f0) => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let _ = write!(
                            out,
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Seq(vec![",
                            binders.join(", ")
                        );
                        for b in &binders {
                            let _ = write!(out, "::serde::Serialize::to_value({b}),");
                        }
                        out.push_str("]))]),");
                    }
                    VariantKind::Named(fields) => {
                        let _ = write!(
                            out,
                            "{name}::{vname} {{ {} }} => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Map(vec![",
                            fields.join(", ")
                        );
                        for f in fields {
                            let _ = write!(
                                out,
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f})),"
                            );
                        }
                        out.push_str("]))]),");
                    }
                }
            }
            out.push_str(" }");
        }
    }
    out.push_str(" } }");
    out
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ "
    );
    match shape {
        Shape::UnitStruct => {
            let _ = write!(out, "let _ = __v; Ok({name})");
        }
        Shape::TupleStruct(1) => {
            let _ = write!(out, "Ok({name}(::serde::Deserialize::from_value(__v)?))");
        }
        Shape::TupleStruct(n) => {
            let _ = write!(
                out,
                "let __seq = __v.as_seq().ok_or_else(|| ::serde::Error::custom(\
                 \"expected sequence for {name}\"))?; Ok({name}("
            );
            for idx in 0..*n {
                let _ = write!(out, "::serde::__seq_elem(__seq, {idx}, \"{name}\")?,");
            }
            out.push_str("))");
        }
        Shape::NamedStruct(fields) => {
            let _ = write!(
                out,
                "let __map = __v.as_map().ok_or_else(|| ::serde::Error::custom(\
                 \"expected map for {name}\"))?; Ok({name} {{ "
            );
            for f in fields {
                let _ = write!(out, "{f}: ::serde::__field(__map, \"{f}\", \"{name}\")?,");
            }
            out.push_str(" })");
        }
        Shape::Enum(variants) => {
            let units: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .collect();
            let payloads: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .collect();
            if !units.is_empty() {
                out.push_str("if let ::serde::Value::Text(__s) = __v { match __s.as_str() { ");
                for v in &units {
                    let vname = &v.name;
                    let _ = write!(out, "\"{vname}\" => return Ok({name}::{vname}),");
                }
                out.push_str("_ => {} } } ");
            }
            if !payloads.is_empty() {
                out.push_str(
                    "if let ::serde::Value::Map(__m) = __v { if __m.len() == 1 { \
                     let __inner = &__m[0].1; match __m[0].0.as_str() { ",
                );
                for v in &payloads {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => unreachable!(),
                        VariantKind::Tuple(1) => {
                            let _ = write!(
                                out,
                                "\"{vname}\" => return Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(__inner)?)),"
                            );
                        }
                        VariantKind::Tuple(n) => {
                            let _ = write!(
                                out,
                                "\"{vname}\" => {{ let __seq = __inner.as_seq()\
                                 .ok_or_else(|| ::serde::Error::custom(\
                                 \"expected sequence for {name}::{vname}\"))?; \
                                 return Ok({name}::{vname}("
                            );
                            for idx in 0..*n {
                                let _ = write!(
                                    out,
                                    "::serde::__seq_elem(__seq, {idx}, \"{name}::{vname}\")?,"
                                );
                            }
                            out.push_str(")); }");
                        }
                        VariantKind::Named(fields) => {
                            let _ = write!(
                                out,
                                "\"{vname}\" => {{ let __fm = __inner.as_map()\
                                 .ok_or_else(|| ::serde::Error::custom(\
                                 \"expected map for {name}::{vname}\"))?; \
                                 return Ok({name}::{vname} {{ "
                            );
                            for f in fields {
                                let _ = write!(
                                    out,
                                    "{f}: ::serde::__field(__fm, \"{f}\", \
                                     \"{name}::{vname}\")?,"
                                );
                            }
                            out.push_str(" }); }");
                        }
                    }
                }
                out.push_str("_ => {} } } } ");
            }
            let _ = write!(
                out,
                "Err(::serde::Error::custom(format!(\
                 \"invalid value of kind {{}} for enum {name}\", __v.kind())))"
            );
        }
    }
    out.push_str(" } }");
    out
}
