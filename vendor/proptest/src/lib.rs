//! Offline vendored subset of `proptest`.
//!
//! Provides the strategy combinators and macros this workspace's property
//! tests use, backed by the vendored `rand` crate. Unlike upstream there is
//! no shrinking and no failure persistence: each test runs a fixed number
//! of deterministically seeded cases (derived from the test name), and a
//! failing case panics with the ordinary assertion message. That keeps the
//! same property-coverage role with a fraction of the machinery.

#![forbid(unsafe_code)]

#[doc(hidden)]
pub use rand as __rand;

/// Run-time configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut StdRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between type-erased alternatives (see `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given arms.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let i = rng.random_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(i32, i64, u32, u64, usize, f64);

    macro_rules! tuple_strategies {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy for vectors with a generated length.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministically seeded samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            // Seed from the test name so cases are stable per test but
            // decorrelated across tests.
            let mut __hash: u64 = 0xcbf2_9ce4_8422_2325;
            for __b in stringify!($name).bytes() {
                __hash = (__hash ^ __b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            for __case in 0..(__config.cases as u64) {
                let mut __rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        __hash ^ __case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    );
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The common imports for writing property tests.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(x in 1i64..100, y in (0.0f64..1.0).prop_map(|v| v * 2.0)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((0.0..2.0).contains(&y), "y={}", y);
        }

        #[test]
        fn oneof_and_vec(items in collection::vec(prop_oneof![Just(1u64), Just(2u64)], 1..6)) {
            prop_assert!(!items.is_empty() && items.len() < 6);
            prop_assert!(items.iter().all(|&i| i == 1 || i == 2));
        }
    }
}
