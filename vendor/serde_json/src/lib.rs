//! Offline vendored subset of `serde_json`.
//!
//! Renders and parses JSON through the vendored `serde::Value` data model.
//! Formatting matches upstream closely enough for this workspace's uses:
//! compact `to_string`, two-space-indented `to_string_pretty`, floats
//! printed with Rust's shortest round-trip formatting (with a trailing
//! `.0` for integral floats, as upstream does), and non-finite floats
//! rendered as `null`. The parser is a strict recursive-descent JSON
//! reader; integers without fraction/exponent parse as integers, all other
//! numbers as `f64` via the standard correctly-rounded parser, so
//! serialize/parse round-trips are exact for finite values.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error raised by serialization or parsing.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e)
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as JSON indented with two spaces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
        }
        Value::UInt(u) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{u}"));
        }
        Value::Float(f) => write_f64(out, *f),
        Value::Text(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // `2.0` rather than `2`, so floats stay visibly floats (as upstream).
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Text(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_exact_for_finite_floats() {
        for f in [0.0f64, -1.5, std::f64::consts::PI, 1e-300, 2.0, 123456.789] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{json}");
        }
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&-7.0f64).unwrap(), "-7.0");
    }

    #[test]
    fn pretty_printing_indents_two_spaces() {
        let v = vec![(String::from("k"), 1i64)];
        let map: std::collections::BTreeMap<String, i64> = v.into_iter().collect();
        assert_eq!(to_string_pretty(&map).unwrap(), "{\n  \"k\": 1\n}");
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\nquote\"back\\slash\ttab\u{1F600}";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<f64>("1.5 x").is_err());
    }
}
