//! Offline vendored subset of the `rand` crate.
//!
//! This workspace builds in environments with no network access and no
//! pre-populated cargo registry, so the handful of `rand` APIs the code
//! actually uses are re-implemented here as a small, dependency-free path
//! crate: [`rngs::StdRng`] (a xoshiro256++ generator), [`SeedableRng`],
//! [`RngExt::random_range`] over half-open and inclusive ranges, and
//! [`seq::SliceRandom::shuffle`]. The streams differ from upstream `rand`,
//! but every consumer in this workspace only relies on seeded determinism,
//! not on a particular stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Fast, tiny, and deterministic across platforms.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut x = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut x);
            }
            // SplitMix64 cannot emit four consecutive zeros from any state,
            // but guard the all-zero fixed point anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl crate::RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A range that a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_open_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits -> [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_closed_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits -> [0, 1].
    (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_open_f64(rng) * (self.end - self.start);
        // Floating rounding can land exactly on `end` for wide ranges.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v.max(self.start)
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        (lo + unit_closed_f64(rng) * (hi - lo)).clamp(lo, hi)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Correct for signed types too: the wrapped bit pattern of
                // end - start equals the unsigned width of the range.
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u64).wrapping_sub(lo as u64);
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (width + 1)) as $t)
            }
        }
    )*};
}

int_sample_range!(i32, i64, u32, u64, usize);

/// Convenience sampling methods on any generator.
pub trait RngExt: RngCore {
    /// Draws one value uniformly from `range`.
    #[inline]
    fn random_range<T, B>(&mut self, range: B) -> T
    where
        B: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence-related helpers.
pub mod seq {
    use crate::{RngCore, RngExt};

    /// In-place random permutation of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffles the slice.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0.0..1.0).to_bits(),
                b.random_range(0.0..1.0).to_bits()
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let g = rng.random_range(2.5f64..=3.5);
            assert!((2.5..=3.5).contains(&g));
            let i = rng.random_range(-4i64..9);
            assert!((-4..9).contains(&i));
            let u = rng.random_range(1usize..=4);
            assert!((1..=4).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
